"""Tests for the per-figure experiment entry points (reduced configurations)."""


import pytest

from repro.analysis import (
    STRATEGIES,
    SweepJob,
    SweepRunner,
    build_device_for,
    clear_sweep_caches,
    compile_with,
    fig02_interaction_strength,
    fig07_mesh_coloring,
    fig09_success_rates,
    fig10_depth_decoherence,
    fig11_color_sweep,
    fig12_residual_coupling,
    fig13_connectivity,
    fig14_example_frequencies,
    fig15_state_transition,
    headline_improvement,
)


class TestBuildingBlocks:
    def test_build_device_matches_benchmark_size(self):
        device = build_device_for("xeb(9,5)")
        assert device.num_qubits == 9

    def test_build_device_with_topology(self):
        device = build_device_for("qgan(16)", topology="1EX-3")
        assert device.num_qubits == 16

    def test_compile_with_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            compile_with("Baseline Z", "bv(4)")

    def test_compile_with_returns_outcome(self):
        outcome = compile_with("ColorDynamic", "bv(4)")
        assert outcome.strategy == "ColorDynamic"
        assert 0.0 <= outcome.success_rate <= 1.0
        assert outcome.depth > 0


class TestSweepRunner:
    JOBS = [
        SweepJob(benchmark="bv(4)", strategy="ColorDynamic"),
        SweepJob(benchmark="bv(4)", strategy="Baseline U"),
        SweepJob(benchmark="xeb(9,3)", strategy="ColorDynamic"),
        SweepJob(benchmark="xeb(9,3)", strategy="Baseline G"),
    ]

    def test_serial_run_preserves_job_order(self):
        outcomes = SweepRunner().run(self.JOBS)
        assert [(o.benchmark, o.strategy) for o in outcomes] == [
            (j.benchmark, j.strategy) for j in self.JOBS
        ]

    def test_parallel_processes_match_serial(self):
        serial = SweepRunner().run(self.JOBS)
        parallel = SweepRunner(max_workers=2).run(self.JOBS)
        for a, b in zip(serial, parallel):
            assert a.success_rate == b.success_rate
            assert a.depth == b.depth
            assert a.max_colors == b.max_colors

    def test_thread_executor_matches_serial(self):
        serial = SweepRunner().run(self.JOBS)
        threaded = SweepRunner(max_workers=2, executor="thread").run(self.JOBS)
        for a, b in zip(serial, threaded):
            assert a.success_rate == b.success_rate

    def test_job_noise_model_overrides_runner_default(self):
        from repro.noise import NoiseModel

        strict = NoiseModel(two_qubit_error=0.05)
        job = SweepJob(benchmark="bv(4)", strategy="ColorDynamic", noise_model=strict)
        (with_override,) = SweepRunner().run([job])
        (default,) = SweepRunner().run([SweepJob(benchmark="bv(4)", strategy="ColorDynamic")])
        assert with_override.success_rate < default.success_rate

    def test_program_cache_reused_across_noise_models(self):
        from repro.analysis.experiments import _PROGRAM_CACHE
        from repro.noise import NoiseModel

        clear_sweep_caches()
        jobs = [
            SweepJob(
                benchmark="xeb(9,3)",
                strategy="Baseline G",
                noise_model=NoiseModel().with_residual_coupling(factor),
                key=factor,
            )
            for factor in (0.0, 0.4, 0.8)
        ]
        SweepRunner().run(jobs)
        assert len(_PROGRAM_CACHE) == 1  # compiled once, scored three times
        clear_sweep_caches()

    def test_explicit_noise_model_wins_over_provided_runner(self):
        from repro.noise import NoiseModel

        strict = NoiseModel(two_qubit_error=0.05)
        default = fig09_success_rates(benchmarks=["bv(4)"], strategies=["ColorDynamic"])
        overridden = fig09_success_rates(
            benchmarks=["bv(4)"],
            strategies=["ColorDynamic"],
            noise_model=strict,
            runner=SweepRunner(),  # runner default must not shadow the model
        )
        assert (
            overridden["bv(4)"]["ColorDynamic"].success_rate
            < default["bv(4)"]["ColorDynamic"].success_rate
        )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(executor="fiber")

    def test_env_var_sets_default_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert SweepRunner().max_workers == 3
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert SweepRunner().max_workers == 1

    @pytest.mark.parametrize("raw", ["junk", "", "0", "-4"])
    def test_invalid_worker_env_falls_back_to_serial(self, monkeypatch, raw):
        """Regression: the raw int() read used to crash on junk values (and
        bypassed the envvars registry — lint rule RPL004)."""
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", raw)
        assert SweepRunner().max_workers == 1

    def test_explicit_workers_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        assert SweepRunner(max_workers=2).max_workers == 2


class TestSweepRunnerProgramCache:
    """The compile-service integration: warm grids perform zero recompilations."""

    JOBS = TestSweepRunner.JOBS

    @staticmethod
    def _outcome_tuple(outcome):
        # Everything except compile_time_s, which measures wall time.
        return (
            outcome.benchmark,
            outcome.strategy,
            outcome.success_rate,
            outcome.depth,
            outcome.duration_ns,
            outcome.decoherence_error,
            outcome.crosstalk_fidelity,
            outcome.max_colors,
        )

    def test_warm_grid_performs_zero_recompilations(self, tmp_path):
        from repro.service import service_override

        clear_sweep_caches()
        with service_override(cache_dir=tmp_path) as cold_service:
            cold = SweepRunner().run(self.JOBS)
        assert cold_service.stats.misses == len(self.JOBS)
        assert cold_service.stats.hits == 0

        clear_sweep_caches()  # drop the in-memory layer; keep the disk store
        with service_override(cache_dir=tmp_path) as warm_service:
            warm = SweepRunner().run(self.JOBS)
        assert warm_service.stats.misses == 0, "warm grid recompiled something"
        assert warm_service.stats.hits == len(self.JOBS)
        assert list(map(self._outcome_tuple, warm)) == list(
            map(self._outcome_tuple, cold)
        )
        clear_sweep_caches()

    def test_results_identical_with_cache_enabled_and_disabled(self, tmp_path):
        clear_sweep_caches()
        cached = SweepRunner(cache_dir=str(tmp_path)).run(self.JOBS)
        clear_sweep_caches()
        cache_hot = SweepRunner(cache_dir=str(tmp_path)).run(self.JOBS)
        clear_sweep_caches()
        uncached = SweepRunner(use_cache=False).run(self.JOBS)
        clear_sweep_caches()
        assert list(map(self._outcome_tuple, cached)) == list(
            map(self._outcome_tuple, uncached)
        )
        assert list(map(self._outcome_tuple, cache_hot)) == list(
            map(self._outcome_tuple, uncached)
        )

    def test_results_identical_across_worker_counts_with_cache(self, tmp_path):
        clear_sweep_caches()
        serial = SweepRunner(cache_dir=str(tmp_path)).run(self.JOBS)
        parallel = SweepRunner(cache_dir=str(tmp_path), max_workers=2).run(self.JOBS)
        threaded = SweepRunner(
            cache_dir=str(tmp_path), max_workers=2, executor="thread"
        ).run(self.JOBS)
        clear_sweep_caches()
        assert list(map(self._outcome_tuple, parallel)) == list(
            map(self._outcome_tuple, serial)
        )
        assert list(map(self._outcome_tuple, threaded)) == list(
            map(self._outcome_tuple, serial)
        )

    def test_cache_hit_reports_cold_compile_time(self, tmp_path):
        from repro.service import service_override

        clear_sweep_caches()
        with service_override(cache_dir=tmp_path):
            (cold,) = SweepRunner().run([self.JOBS[0]])
        clear_sweep_caches()
        with service_override(cache_dir=tmp_path):
            (warm,) = SweepRunner().run([self.JOBS[0]])
        clear_sweep_caches()
        assert warm.compile_time_s == cold.compile_time_s


class TestPhysicsFigures:
    def test_fig02_peaks_at_resonance(self):
        data = fig02_interaction_strength(points=61)
        strengths = data["strength"]
        omegas = data["omega_a"]
        peak = omegas[strengths.index(max(strengths))]
        assert abs(peak - 5.44) < 0.01
        assert strengths[0] < max(strengths) / 3

    def test_fig07_mesh_coloring_counts(self):
        data = fig07_mesh_coloring(side=5)
        assert data["connectivity_colors"] == 2
        assert data["crosstalk_colors"] <= 10
        assert data["crosstalk_vertices"] == 40

    def test_fig15_transition_maps(self):
        data = fig15_state_transition(detuning_points=11, time_points=11)
        assert len(data["iswap_transition"]) == 11
        assert all(0.0 <= p <= 1.0 for row in data["iswap_transition"] for p in row)
        # A full iSWAP transfer happens on resonance at t = 1/(4 g); a CZ is a
        # complete |11>-|20> round trip at sqrt(2) g, i.e. 1/(2 sqrt(2) g).
        assert data["iswap_full_transfer_time_ns"] == pytest.approx(50.0)
        assert data["cz_full_cycle_time_ns"] == pytest.approx(70.71, abs=0.1)


class TestEvaluationFigures:
    BENCHES = ["bv(4)", "xeb(9,3)"]

    def test_fig09_reduced_run_structure(self):
        results = fig09_success_rates(benchmarks=self.BENCHES)
        assert set(results) == set(self.BENCHES)
        for per_strategy in results.values():
            assert set(per_strategy) == set(STRATEGIES)
            for outcome in per_strategy.values():
                assert 0.0 <= outcome.success_rate <= 1.0

    def test_headline_improvement_from_fig09(self):
        results = fig09_success_rates(benchmarks=self.BENCHES)
        summary = headline_improvement(results)
        assert summary["num_benchmarks"] == len(self.BENCHES)
        assert summary["arithmetic_mean"] >= summary["min"]

    def test_fig10_reports_depth_and_decoherence(self):
        results = fig10_depth_decoherence(benchmarks=["xeb(9,3)"])
        row = results["xeb(9,3)"]
        assert set(row) == {"Baseline G", "Baseline U", "ColorDynamic"}
        assert row["Baseline U"].depth >= row["ColorDynamic"].depth
        assert 0.0 <= row["ColorDynamic"].decoherence_error <= 1.0

    def test_fig11_color_budget_sweep(self):
        results = fig11_color_sweep(benchmarks=["xeb(9,3)"], max_colors_values=(1, 2, 3))
        sweep = results["xeb(9,3)"]
        assert set(sweep) == {1, 2, 3}
        # Fewer colors should never reduce circuit depth.
        assert sweep[1].depth >= sweep[3].depth

    def test_fig12_success_decays_with_residual_coupling(self):
        results = fig12_residual_coupling(benchmarks=["xeb(9,3)"], factors=(0.0, 0.4, 0.8))
        series = results["xeb(9,3)"]
        assert series[0.0] >= series[0.4] >= series[0.8]

    def test_fig13_reduced_topology_sweep(self):
        results = fig13_connectivity(
            benchmarks=["ising(4)"], topologies=["linear", "grid"]
        )
        row = results["ising(4)"]
        assert set(row) == {"linear", "grid"}
        for per_strategy in row.values():
            assert set(per_strategy) == {"Baseline U", "ColorDynamic"}

    def test_fig14_example_frequencies(self):
        data = fig14_example_frequencies(side=4, cycles=1)
        idle = data["idle_frequencies"]
        assert len(idle) == 4 and len(idle[0]) == 4
        # Checkerboard parking: horizontally adjacent qubits use different values.
        assert idle[0][0] != idle[0][1]
        assert data["interaction_steps"], "at least one step must carry interactions"
        partition = data["partition"]
        for step in data["interaction_steps"]:
            for freq in step.values():
                assert partition.in_interaction(freq)
