"""Tests for the reporting helpers."""

import math

import pytest

from repro.analysis import (
    arithmetic_mean,
    format_series,
    format_table,
    geometric_mean,
    improvement_ratios,
    to_csv,
)


class TestTables:
    def test_format_table_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["b", 2]], title="demo")
        assert "demo" in text
        assert "name" in text
        assert "1.235" in text
        assert text.count("\n") == 5

    def test_to_csv(self):
        text = to_csv(["x", "y"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["x,y", "1,2", "3,4"]

    def test_format_series(self):
        text = format_series("depth", ["a", "b"], [1.0, 2.0])
        assert text.startswith("depth:")
        assert "a: 1" in text


class TestStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_handles_zero(self):
        assert geometric_mean([0.0, 1.0]) >= 0.0

    def test_geometric_mean_of_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert math.isnan(arithmetic_mean([]))

    def test_improvement_ratios_only_shared_keys(self):
        ratios = improvement_ratios({"a": 2.0, "b": 1.0}, {"a": 1.0, "c": 5.0})
        assert ratios == {"a": 2.0}

    def test_improvement_ratios_skip_zero_baselines(self):
        assert improvement_ratios({"a": 2.0}, {"a": 0.0}) == {}
