"""SweepRunner span collection: per-worker buffers merge into one timeline,
deterministically, without changing results."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.analysis import SweepJob, SweepRunner, clear_sweep_caches
from repro.obs import get_tracer, merge_records

JOBS = [
    SweepJob(benchmark="bv(4)", strategy="ColorDynamic"),
    SweepJob(benchmark="bv(4)", strategy="Baseline U"),
    SweepJob(benchmark="xeb(9,3)", strategy="ColorDynamic"),
    SweepJob(benchmark="xeb(9,3)", strategy="Baseline G"),
]


@pytest.fixture()
def traced():
    tracer = get_tracer()
    tracer.clear()
    obs.set_enabled(True)
    try:
        yield tracer
    finally:
        obs.set_enabled(False)
        tracer.clear()


def test_serial_sweep_records_job_spans(traced):
    SweepRunner().run(JOBS)
    names = [r["name"] for r in traced.records()]
    assert names.count("sweep.job") == len(JOBS)
    job_args = [r["args"] for r in traced.records() if r["name"] == "sweep.job"]
    assert {a["strategy"] for a in job_args} == {
        "ColorDynamic",
        "Baseline U",
        "Baseline G",
    }


def test_sweep_spans_cost_nothing_when_disabled():
    tracer = get_tracer()
    tracer.clear()
    assert not obs.is_enabled()
    SweepRunner().run(JOBS[:1])
    assert tracer.records() == []


def test_process_workers_merge_into_parent_timeline(traced):
    serial = SweepRunner().run(JOBS)
    traced.clear()
    # Forked workers inherit this process's program memo; clear it so they
    # resolve compiles themselves and ship the nested spans back.
    clear_sweep_caches()

    parallel = SweepRunner(max_workers=2).run(JOBS)
    records = traced.records()

    # Results are unchanged by tracing across worker counts.
    assert [(o.benchmark, o.strategy) for o in parallel] == [
        (o.benchmark, o.strategy) for o in serial
    ]
    assert [o.success_rate for o in parallel] == [o.success_rate for o in serial]

    job_spans = [r for r in records if r["name"] == "sweep.job"]
    assert len(job_spans) == len(JOBS)
    # Spans are tagged with the *worker* pid, not the parent's.
    assert all(r["pid"] != os.getpid() for r in job_spans)
    # Workers ship nested spans back too: scoring always runs, and the
    # compile resolves either cold ("compile") or via the program store
    # ("cache.load") depending on cache state.
    assert any(r["name"] == "estimate" for r in records)
    assert any(r["name"] in ("compile", "cache.load") for r in records)


def test_merged_timeline_is_deterministic_by_sort(traced):
    SweepRunner(max_workers=2).run(JOBS)
    records = traced.drain()
    assert merge_records(records) == merge_records(reversed(list(records)))


def test_thread_workers_share_the_parent_tracer(traced):
    SweepRunner(max_workers=2, executor="thread").run(JOBS)
    job_spans = [r for r in traced.records() if r["name"] == "sweep.job"]
    assert len(job_spans) == len(JOBS)
    assert all(r["pid"] == os.getpid() for r in job_spans)
