"""Qualitative reproduction checks for the paper's headline claims.

These tests assert the *shape* of the results — who wins and in what order —
on a reduced but representative benchmark set, mirroring Section VII:

* ColorDynamic consistently outperforms the serialization baseline (U) and
  the static assignment (S) on parallel-heavy workloads;
* ColorDynamic is comparable to the tunable-coupler architecture (G) without
  needing tunable couplers;
* the crosstalk-unaware baseline (N) collapses on circuits with simultaneous
  two-qubit gates;
* Baseline G degrades as residual coupling through "off" couplers grows
  (Fig. 12);
* a 2-D mesh needs only two idle frequencies and a handful of interaction
  frequencies regardless of size (Fig. 7).
"""

import pytest

from repro.analysis import (
    fig07_mesh_coloring,
    fig09_success_rates,
    fig12_residual_coupling,
    headline_improvement,
)


@pytest.fixture(scope="module")
def parallel_heavy_results():
    return fig09_success_rates(benchmarks=["xeb(16,5)", "xeb(16,10)"])


class TestOrderingClaims:
    def test_colordynamic_beats_serialization(self, parallel_heavy_results):
        for row in parallel_heavy_results.values():
            assert row["ColorDynamic"].success_rate >= row["Baseline U"].success_rate

    def test_colordynamic_beats_static(self, parallel_heavy_results):
        for row in parallel_heavy_results.values():
            assert row["ColorDynamic"].success_rate >= row["Baseline S"].success_rate

    def test_colordynamic_is_comparable_to_gmon(self, parallel_heavy_results):
        for row in parallel_heavy_results.values():
            ratio = row["ColorDynamic"].success_rate / row["Baseline G"].success_rate
            assert ratio > 0.25, "ColorDynamic should stay within a small factor of Baseline G"

    def test_naive_baseline_collapses_on_parallel_circuits(self, parallel_heavy_results):
        for row in parallel_heavy_results.values():
            assert row["Baseline N"].success_rate < 0.01 * row["ColorDynamic"].success_rate

    def test_serialization_inflates_depth(self, parallel_heavy_results):
        for row in parallel_heavy_results.values():
            assert row["Baseline U"].depth > row["ColorDynamic"].depth

    def test_improvement_over_serialization_is_substantial(self, parallel_heavy_results):
        summary = headline_improvement(parallel_heavy_results)
        assert summary["arithmetic_mean"] > 1.2


class TestOtherClaims:
    def test_gmon_success_decays_with_residual_coupling(self):
        results = fig12_residual_coupling(
            benchmarks=["xeb(9,5)"], factors=(0.0, 0.2, 0.4, 0.6, 0.8)
        )
        series = list(results["xeb(9,5)"].values())
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] < 0.5 * series[0]

    def test_mesh_coloring_is_size_independent(self):
        small = fig07_mesh_coloring(side=4)["crosstalk_colors"]
        large = fig07_mesh_coloring(side=6)["crosstalk_colors"]
        assert abs(small - large) <= 1
        assert fig07_mesh_coloring(side=5)["connectivity_colors"] == 2
