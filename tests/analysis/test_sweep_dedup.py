"""Regression: a sweep never compiles the same grid point twice.

PR 3 collapsed the sweep workers' private device/compiler memos into the
:class:`~repro.service.CompileService` value-keyed memos — compiler identity
now lives in exactly one key tuple (the service's).  These tests pin down
the consequence the sweep layer relies on: however a grid is shaped (noise
models riding on jobs, repeated budgets, repeated benchmarks) and at any
worker count, each distinct ``(strategy, benchmark, topology, seed,
max_colors)`` point is compiled exactly once.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.analysis.experiments import (
    SweepJob,
    SweepRunner,
    clear_sweep_caches,
)
from repro.core.compiler import ColorDynamic
from repro.baselines.base import BaselineCompiler
from repro.noise import NoiseModel
from repro.service import service_override


def _timeless(outcomes):
    """Outcomes with the wall-clock compile time zeroed (run-dependent)."""
    return [dataclasses.replace(o, compile_time_s=0.0) for o in outcomes]


class _CompileCounter:
    """Counts every underlying engine compile (ColorDynamic + baselines)."""

    def __init__(self, monkeypatch):
        self.count = 0
        self._lock = threading.Lock()
        for cls in (ColorDynamic, BaselineCompiler):
            original = cls.compile

            def counted(comp_self, circuit, *args, _original=original, **kwargs):
                with self._lock:
                    self.count += 1
                return _original(comp_self, circuit, *args, **kwargs)

            monkeypatch.setattr(cls, "compile", counted)


#: A duplicate-heavy grid: Fig. 12-style (one compilation scored under many
#: noise models), Fig. 11-style (repeated color budgets), and a plain
#: repeated benchmark.  13 jobs, 6 distinct compilations.
def _duplicate_heavy_jobs():
    jobs = []
    for factor in (0.0, 0.3, 0.6):  # same key, noise model varies
        jobs.append(
            SweepJob(
                benchmark="xeb(9,2)",
                strategy="Baseline G",
                noise_model=NoiseModel().with_residual_coupling(factor),
                key=factor,
            )
        )
    for budget in (2, 2, 3, 3):  # two distinct keys
        jobs.append(
            SweepJob(
                benchmark="xeb(9,2)",
                strategy="ColorDynamic",
                max_colors=budget,
                key=budget,
            )
        )
    for _ in range(3):  # one distinct key
        jobs.append(SweepJob(benchmark="bv(9)", strategy="Baseline U"))
    jobs.append(SweepJob(benchmark="bv(9)", strategy="Baseline S"))
    jobs.append(SweepJob(benchmark="bv(9)", strategy="ColorDynamic"))
    jobs.append(SweepJob(benchmark="bv(9)", strategy="ColorDynamic"))
    return jobs, 6


@pytest.mark.parametrize("workers", [1, 3])
def test_sweep_compiles_each_distinct_point_once(monkeypatch, workers):
    """Serial and thread-pool sweeps perform zero duplicate compiles."""
    jobs, distinct = _duplicate_heavy_jobs()
    clear_sweep_caches()
    counter = _CompileCounter(monkeypatch)
    with service_override(enabled=False):
        runner = SweepRunner(max_workers=workers, executor="thread")
        outcomes = runner.run(jobs)
    assert len(outcomes) == len(jobs)
    assert counter.count == distinct, (
        f"{counter.count} engine compiles for {distinct} distinct grid points"
    )
    clear_sweep_caches()


def test_sweep_results_identical_at_any_worker_count(monkeypatch):
    """Dedup does not change results: thread-pool == serial, job order kept."""
    jobs, _ = _duplicate_heavy_jobs()
    clear_sweep_caches()
    with service_override(enabled=False):
        serial = SweepRunner(max_workers=1).run(jobs)
    clear_sweep_caches()
    with service_override(enabled=False):
        threaded = SweepRunner(max_workers=4, executor="thread").run(jobs)
    clear_sweep_caches()
    assert _timeless(serial) == _timeless(threaded)


def test_repeated_process_sweep_recompiles_nothing(tmp_path):
    """With the shared store, a repeated multi-process sweep is all cache hits.

    Cross-process dedup is the store's job: after one sweep has persisted
    every distinct point, a second sweep at any worker count rewrites no
    store entry (file mtimes are untouched).
    """
    jobs, distinct = _duplicate_heavy_jobs()
    cache_dir = tmp_path / "store"
    clear_sweep_caches()
    runner = SweepRunner(max_workers=2, executor="process", cache_dir=str(cache_dir))
    first = runner.run(jobs)

    def entry_files():
        # Entry payloads live in the two-level sharded layout; the store
        # index (v*/index.json) is metadata and legitimately changes on
        # every hit (its last_used stamps are what LRU eviction orders by).
        return sorted(cache_dir.glob("v*/??/*.json"))

    entries = entry_files()
    assert len(entries) == distinct
    mtimes = {p: p.stat().st_mtime_ns for p in entries}

    clear_sweep_caches()
    second = SweepRunner(
        max_workers=2, executor="process", cache_dir=str(cache_dir)
    ).run(jobs)
    clear_sweep_caches()

    assert _timeless(first) == _timeless(second)
    assert {p: p.stat().st_mtime_ns for p in entry_files()} == mtimes
