"""Tests for the crosstalk physics model (Appendix B / Fig. 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.noise import (
    cz_gate_time_ns,
    effective_coupling,
    exchange_probability,
    gate_time_ns,
    intended_gate_error,
    iswap_gate_time_ns,
    pairwise_channels,
    residual_coupling,
    spectator_error,
    sqrt_iswap_gate_time_ns,
)


class TestCouplingStrength:
    def test_residual_coupling_matches_eq5(self):
        assert residual_coupling(0.005, 0.5) == pytest.approx(0.005 ** 2 / 0.5)

    def test_effective_coupling_saturates_at_g0_on_resonance(self):
        assert effective_coupling(0.005, 0.0) == pytest.approx(0.005)

    def test_effective_coupling_matches_residual_far_from_resonance(self):
        far = effective_coupling(0.005, 0.5)
        assert far == pytest.approx(residual_coupling(0.005, 0.5), rel=1e-3)

    def test_effective_coupling_is_symmetric_in_detuning(self):
        assert effective_coupling(0.005, 0.3) == pytest.approx(effective_coupling(0.005, -0.3))

    @given(delta=st.floats(min_value=1e-4, max_value=2.0))
    def test_effective_coupling_monotonically_decreases(self, delta):
        g0 = 0.005
        assert effective_coupling(g0, delta) >= effective_coupling(g0, delta * 2)

    def test_fig2_peak_shape(self):
        """The Fig. 2 curve peaks at resonance and falls off on both sides."""
        g0, omega_b = 0.005, 5.44
        sweep = [5.38 + i * 0.002 for i in range(61)]
        strengths = [effective_coupling(g0, w - omega_b) for w in sweep]
        peak_index = strengths.index(max(strengths))
        assert abs(sweep[peak_index] - omega_b) < 0.003
        assert strengths[0] < max(strengths) / 5
        assert strengths[-1] < max(strengths) / 5


class TestGateTimes:
    def test_iswap_time_formula(self):
        g = 0.005
        assert iswap_gate_time_ns(g) == pytest.approx(1.0 / (4.0 * g))

    def test_sqrt_iswap_is_half_iswap(self):
        assert sqrt_iswap_gate_time_ns(0.005) == pytest.approx(iswap_gate_time_ns(0.005) / 2)

    def test_cz_time_uses_sqrt2_coupling(self):
        g = 0.005
        assert cz_gate_time_ns(g) == pytest.approx(math.pi / (math.sqrt(2) * 2 * math.pi * g))

    def test_default_coupling_gives_roughly_50ns_iswap(self):
        assert iswap_gate_time_ns(0.005) == pytest.approx(50.0)

    def test_gate_time_dispatch(self):
        assert gate_time_ns("iswap", 0.005) == iswap_gate_time_ns(0.005)
        assert gate_time_ns("cz", 0.005) == cz_gate_time_ns(0.005)
        with pytest.raises(ValueError):
            gate_time_ns("cx", 0.005)

    def test_nonpositive_coupling_rejected(self):
        with pytest.raises(ValueError):
            iswap_gate_time_ns(0.0)

    def test_higher_coupling_means_faster_gates(self):
        assert iswap_gate_time_ns(0.01) < iswap_gate_time_ns(0.005)


class TestErrors:
    def test_exchange_probability_full_transfer_at_half_period(self):
        g = 0.005
        assert exchange_probability(g, iswap_gate_time_ns(g)) == pytest.approx(1.0)

    def test_exchange_probability_zero_at_zero_time(self):
        assert exchange_probability(0.005, 0.0) == 0.0

    def test_intended_iswap_error_is_floor_at_nominal_duration(self):
        assert intended_gate_error("iswap", 0.005, calibration_error=0.004) == pytest.approx(0.004)

    def test_intended_gate_error_grows_with_timing_mismatch(self):
        nominal = iswap_gate_time_ns(0.005)
        late = intended_gate_error("iswap", 0.005, duration_ns=nominal * 1.2)
        assert late > intended_gate_error("iswap", 0.005, duration_ns=nominal)

    def test_intended_cz_error_zero_at_nominal(self):
        assert intended_gate_error("cz", 0.005) == pytest.approx(0.0, abs=1e-12)

    def test_spectator_error_increases_as_detuning_shrinks(self):
        close = spectator_error(0.005, 0.05, 50.0)
        far = spectator_error(0.005, 0.5, 50.0)
        assert close > far

    def test_spectator_error_worst_case_bounds_sine(self):
        for delta in (0.05, 0.2, 0.5):
            worst = spectator_error(0.005, delta, 30.0, worst_case=True)
            oscillating = spectator_error(0.005, delta, 30.0, worst_case=False)
            assert worst + 1e-12 >= oscillating

    def test_spectator_error_capped_at_one(self):
        assert spectator_error(0.05, 0.0, 1000.0) == 1.0

    @given(
        delta=st.floats(min_value=0.0, max_value=2.0),
        t=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_spectator_error_is_a_probability(self, delta, t):
        value = spectator_error(0.005, delta, t)
        assert 0.0 <= value <= 1.0


class TestChannels:
    def test_pairwise_channels_enumerates_three(self):
        channels = pairwise_channels((0, 1), 6.0, 5.5, -0.2, -0.2, 0.005)
        kinds = {c.kind for c in channels}
        assert kinds == {"01-01", "01-12", "12-01"}

    def test_channel_detunings(self):
        channels = {c.kind: c for c in pairwise_channels((0, 1), 6.0, 5.5, -0.2, -0.2, 0.005)}
        assert channels["01-01"].detuning == pytest.approx(0.5)
        assert channels["01-12"].detuning == pytest.approx(abs(6.0 - 5.3))
        assert channels["12-01"].detuning == pytest.approx(abs(5.8 - 5.5))

    def test_leakage_channels_have_enhanced_coupling(self):
        channels = {c.kind: c for c in pairwise_channels((0, 1), 6.0, 5.5, -0.2, -0.2, 0.005)}
        assert channels["01-12"].enhanced_coupling == pytest.approx(math.sqrt(2) * 0.005)
        assert channels["01-01"].enhanced_coupling == pytest.approx(0.005)
