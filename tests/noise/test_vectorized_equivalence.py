"""Equivalence suite: vectorized Eq. (4) engine vs the scalar reference.

Every strategy x benchmark of the Fig. 9 suite is compiled once and scored by
both estimator engines under several noise-model configurations (default,
distance-2 crosstalk, residual coupling, flux noise off).  The success rates
must agree to <= 1e-12 — the vectorized engine is a pure data-plane rewrite,
not a model change.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import STRATEGIES, _make_compiler, build_device_for
from repro.noise import NoiseModel, estimate_success
from repro.workloads import benchmark_circuit, fig09_benchmarks

TOLERANCE = 1e-12

#: The model configurations the satellite task calls out explicitly.
MODEL_CONFIGS = {
    "default": NoiseModel(),
    "distance2": NoiseModel(crosstalk_distance=2),
    "residual": NoiseModel(residual_coupler_factor=0.3),
    "no-flux-noise": NoiseModel(include_flux_noise=False),
}

_PROGRAM_CACHE = {}


def _compiled_program(bench_name: str, strategy: str):
    key = (bench_name, strategy)
    if key not in _PROGRAM_CACHE:
        device = build_device_for(bench_name)
        circuit = benchmark_circuit(bench_name, seed=2020)
        compiler = _make_compiler(strategy, device)
        _PROGRAM_CACHE[key] = compiler.compile(circuit).program
    return _PROGRAM_CACHE[key]


@pytest.mark.parametrize("bench_name", fig09_benchmarks())
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_vectorized_matches_scalar_on_fig09_suite(bench_name, strategy):
    program = _compiled_program(bench_name, strategy)
    for name, model in MODEL_CONFIGS.items():
        scalar = estimate_success(program, model, vectorized=False)
        fast = estimate_success(program, model, vectorized=True)
        context = f"{strategy} on {bench_name} [{name}]"
        assert abs(fast.success_rate - scalar.success_rate) <= TOLERANCE, context
        assert (
            abs(fast.crosstalk_fidelity_product - scalar.crosstalk_fidelity_product)
            <= TOLERANCE
        ), context
        assert (
            abs(fast.decoherence_fidelity_product - scalar.decoherence_fidelity_product)
            <= TOLERANCE
        ), context
        assert (
            abs(fast.worst_spectator_error - scalar.worst_spectator_error) <= TOLERANCE
        ), context
        assert fast.num_single_qubit_gates == scalar.num_single_qubit_gates
        assert fast.num_virtual_single_qubit_gates == scalar.num_virtual_single_qubit_gates
        assert fast.num_two_qubit_gates == scalar.num_two_qubit_gates


def test_vectorized_handles_gmon_programs():
    """Active-coupler masks (Baseline G) agree across engines including leakage."""
    program = _compiled_program("xeb(16,5)", "Baseline G")
    for factor in (0.0, 0.2, 0.8):
        model = NoiseModel(residual_coupler_factor=factor)
        scalar = estimate_success(program, model, vectorized=False)
        fast = estimate_success(program, model, vectorized=True)
        assert abs(fast.success_rate - scalar.success_rate) <= TOLERANCE


def test_vectorized_handles_empty_program(device4):
    from repro.program import CompiledProgram

    program = CompiledProgram(device=device4, steps=[], name="empty")
    for vectorized in (False, True):
        report = estimate_success(program, vectorized=vectorized)
        assert report.success_rate == pytest.approx(1.0)


def test_oscillatory_and_idle_idle_modes_agree(device9):
    """Non-default model branches (sin^2 envelope, idle-idle charging) match too."""
    from repro.core import ColorDynamic

    circuit = benchmark_circuit("xeb(9,5)", seed=2020)
    program = ColorDynamic(device9).compile(circuit).program
    model = NoiseModel(worst_case=False, include_leakage=False, idle_idle_crosstalk=True)
    scalar = estimate_success(program, model, vectorized=False)
    fast = estimate_success(program, model, vectorized=True)
    assert abs(fast.success_rate - scalar.success_rate) <= TOLERANCE
