"""Tests for the leakage error channels."""


import pytest

from repro.noise import cz_residual_leakage, leakage_channels_detuning, leakage_probability
from repro.noise.crosstalk import cz_gate_time_ns


class TestLeakageProbability:
    def test_zero_time_gives_zero_leakage(self):
        assert leakage_probability(0.005, 0.3, 0.0) == 0.0

    def test_leakage_grows_as_detuning_shrinks(self):
        assert leakage_probability(0.005, 0.05, 50.0) > leakage_probability(0.005, 0.5, 50.0)

    def test_leakage_is_probability(self):
        for detuning in (0.0, 0.1, 1.0):
            assert 0.0 <= leakage_probability(0.005, detuning, 100.0) <= 1.0

    def test_worst_case_bounds_oscillating(self):
        worst = leakage_probability(0.005, 0.2, 40.0, worst_case=True)
        osc = leakage_probability(0.005, 0.2, 40.0, worst_case=False)
        assert worst + 1e-12 >= osc


class TestCZResidualLeakage:
    def test_perfect_cz_duration_has_no_residual(self):
        g = 0.005
        assert cz_residual_leakage(g, cz_gate_time_ns(g)) == pytest.approx(0.0, abs=1e-9)

    def test_mistimed_cz_leaves_population(self):
        g = 0.005
        assert cz_residual_leakage(g, cz_gate_time_ns(g) * 1.1) > 0.0


class TestChannelDetunings:
    def test_two_channels_reported(self):
        channels = dict(leakage_channels_detuning(6.0, 5.7, -0.2, -0.2))
        assert channels["01-12"] == pytest.approx(abs(6.0 - 5.5))
        assert channels["12-01"] == pytest.approx(abs(5.8 - 5.7))

    def test_cz_resonance_condition_shows_up_as_zero_detuning(self):
        # omega01_a == omega12_b: the CZ resonance channel.
        channels = dict(leakage_channels_detuning(5.8, 6.0, -0.2, -0.2))
        assert channels["01-12"] == pytest.approx(0.0)
