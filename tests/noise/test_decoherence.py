"""Tests for the T1/T2 decoherence model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.noise import (
    amplitude_damping_probability,
    combined_qubit_error,
    decoherence_error,
    dephasing_probability,
    program_decoherence_error,
)


class TestBasicFormulas:
    def test_zero_duration_gives_zero_error(self):
        assert decoherence_error(0.0, 10_000, 10_000) == 0.0

    def test_long_duration_approaches_one(self):
        assert decoherence_error(1e9, 10_000, 10_000) == pytest.approx(1.0)

    def test_combined_error_is_product_of_channels(self):
        t, t1, t2 = 500.0, 20_000.0, 15_000.0
        expected = (1 - math.exp(-t / t1)) * (1 - math.exp(-t / t2))
        assert decoherence_error(t, t1, t2) == pytest.approx(expected)

    def test_amplitude_damping_monotone_in_time(self):
        assert amplitude_damping_probability(200, 10_000) < amplitude_damping_probability(400, 10_000)

    def test_dephasing_monotone_in_t2(self):
        assert dephasing_probability(200, 10_000) > dephasing_probability(200, 20_000)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            decoherence_error(-1.0, 10_000, 10_000)

    def test_nonpositive_t1_rejected(self):
        with pytest.raises(ValueError):
            amplitude_damping_probability(10.0, 0.0)

    @given(
        t=st.floats(min_value=0, max_value=1e6),
        t1=st.floats(min_value=100, max_value=1e6),
        t2=st.floats(min_value=100, max_value=1e6),
    )
    def test_error_is_a_probability(self, t, t1, t2):
        assert 0.0 <= decoherence_error(t, t1, t2) <= 1.0


class TestExtraDephasing:
    def test_extra_dephasing_increases_error(self):
        base = combined_qubit_error(1000.0, 20_000, 20_000)
        noisy = combined_qubit_error(1000.0, 20_000, 20_000, extra_dephasing_rate_per_ns=1e-4)
        assert noisy > base

    def test_zero_extra_rate_matches_base_formula(self):
        assert combined_qubit_error(1000.0, 20_000, 20_000, 0.0) == pytest.approx(
            decoherence_error(1000.0, 20_000, 20_000)
        )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            combined_qubit_error(100.0, 1000.0, 1000.0, -1e-5)


class TestProgramLevel:
    def test_per_qubit_errors_use_per_qubit_times(self):
        errors = program_decoherence_error({0: 100.0, 1: 1000.0}, 20_000, 20_000)
        assert errors[1] > errors[0]

    def test_per_qubit_coherence_mappings(self):
        errors = program_decoherence_error(
            {0: 500.0, 1: 500.0}, {0: 10_000, 1: 40_000}, {0: 10_000, 1: 40_000}
        )
        assert errors[0] > errors[1]

    def test_per_qubit_extra_rate_mapping(self):
        errors = program_decoherence_error(
            {0: 500.0, 1: 500.0}, 20_000, 20_000, {0: 0.0, 1: 1e-3}
        )
        assert errors[1] > errors[0]
