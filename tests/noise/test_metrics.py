"""Tests for the worst-case success-rate estimator (Eq. (4))."""

import pytest

from repro import ColorDynamic, NoiseModel, benchmark_circuit
from repro.circuits import Gate
from repro.noise import estimate_success, success_rate
from repro.program import CompiledProgram, Interaction, TimeStep


def _single_step_program(device, frequencies, interactions=(), gates=(), duration=50.0):
    step = TimeStep(
        gates=list(gates),
        frequencies=dict(frequencies),
        interactions=list(interactions),
        duration_ns=duration,
    )
    return CompiledProgram(device=device, steps=[step], name="manual", strategy="manual")


class TestEstimatorBasics:
    def test_empty_program_has_unit_success(self, device4):
        program = CompiledProgram(device=device4, steps=[], name="empty")
        report = estimate_success(program)
        assert report.success_rate == pytest.approx(1.0)

    def test_gate_floor_applied_per_gate(self, device4):
        idle = {q: 5.0 + 0.7 * (q % 2) for q in range(4)}
        program = _single_step_program(
            device4, idle, gates=[Gate("h", (0,)), Gate("h", (1,))], duration=25.0
        )
        model = NoiseModel(single_qubit_error=0.01, include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.gate_fidelity_product == pytest.approx(0.99 ** 2)
        assert report.num_single_qubit_gates == 2

    def test_virtual_z_gates_counted_separately(self, device4):
        """Zero-duration frame updates are free and must not inflate the physical tally."""
        idle = {q: 5.0 + 0.7 * (q % 2) for q in range(4)}
        gates = [Gate("h", (0,)), Gate("rz", (1,), (0.5,)), Gate("z", (2,))]
        program = _single_step_program(device4, idle, gates=gates, duration=25.0)
        model = NoiseModel(single_qubit_error=0.01, include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.num_single_qubit_gates == 1  # only the physical h pulse
        assert report.num_virtual_single_qubit_gates == 2  # rz + z
        assert report.gate_fidelity_product == pytest.approx(0.99)

    def test_measurement_uses_readout_error(self, device4):
        idle = {q: 5.0 + 0.7 * (q % 2) for q in range(4)}
        program = _single_step_program(device4, idle, gates=[Gate("measure", (0,))], duration=300.0)
        model = NoiseModel(readout_error=0.05, include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.gate_fidelity_product == pytest.approx(0.95)

    def test_decoherence_error_grows_with_duration(self, device4):
        idle = {q: 5.0 + 0.7 * (q % 2) for q in range(4)}
        short = _single_step_program(device4, idle, duration=50.0)
        long = _single_step_program(device4, idle, duration=5000.0)
        assert (
            estimate_success(long).decoherence_fidelity_product
            < estimate_success(short).decoherence_fidelity_product
        )

    def test_success_rate_wrapper_matches_report(self, device9):
        program = ColorDynamic(device9).compile(benchmark_circuit("ising(9)", seed=1)).program
        assert success_rate(program) == pytest.approx(estimate_success(program).success_rate)


class TestCrosstalkSensitivity:
    def test_colliding_parallel_gates_are_penalised(self, device4):
        """Two adjacent interactions at the same frequency must crater the estimate."""
        idle = {q: 5.0 for q in range(4)}
        colliding = [
            Interaction(pair=(0, 1), gate_name="iswap", frequency=6.5),
            Interaction(pair=(2, 3), gate_name="iswap", frequency=6.5),
        ]
        separated = [
            Interaction(pair=(0, 1), gate_name="iswap", frequency=6.8),
            Interaction(pair=(2, 3), gate_name="iswap", frequency=6.2),
        ]
        freq_collide = {0: 6.5, 1: 6.5, 2: 6.5, 3: 6.5}
        freq_separate = {0: 6.8, 1: 6.8, 2: 6.2, 3: 6.2}
        gates = [Gate("iswap", (0, 1)), Gate("iswap", (2, 3))]
        bad = _single_step_program(device4, freq_collide, colliding, gates)
        good = _single_step_program(device4, freq_separate, separated, gates)
        model = NoiseModel(include_flux_noise=False)
        assert estimate_success(bad, model).crosstalk_fidelity_product < 0.2
        assert estimate_success(good, model).crosstalk_fidelity_product > 0.9

    def test_intended_pair_not_charged_as_spectator(self, device4):
        idle = {0: 6.5, 1: 6.5, 2: 5.0, 3: 5.7}
        interactions = [Interaction(pair=(0, 1), gate_name="iswap", frequency=6.5)]
        program = _single_step_program(device4, idle, interactions, [Gate("iswap", (0, 1))])
        model = NoiseModel(include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.crosstalk_fidelity_product > 0.9

    def test_parking_collision_is_charged_even_when_idle(self, device4):
        frequencies = {0: 5.40, 1: 5.41, 2: 5.0, 3: 5.7}  # qubits 0-1 parked on top of each other
        program = _single_step_program(device4, frequencies)
        model = NoiseModel(include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.crosstalk_fidelity_product < 0.9

    def test_safe_parking_is_not_charged(self, device4):
        frequencies = {0: 5.0, 1: 5.7, 2: 5.7, 3: 5.0}
        program = _single_step_program(device4, frequencies)
        model = NoiseModel(include_flux_noise=False)
        report = estimate_success(program, model)
        assert report.crosstalk_fidelity_product == pytest.approx(1.0)

    def test_idle_idle_crosstalk_flag_charges_everything(self, device4):
        frequencies = {0: 5.0, 1: 5.7, 2: 5.7, 3: 5.0}
        program = _single_step_program(device4, frequencies)
        strict = NoiseModel(idle_idle_crosstalk=True, include_flux_noise=False)
        lax = NoiseModel(idle_idle_crosstalk=False, include_flux_noise=False)
        assert (
            estimate_success(program, strict).crosstalk_fidelity_product
            <= estimate_success(program, lax).crosstalk_fidelity_product
        )

    def test_residual_coupler_factor_controls_gmon_crosstalk(self, device4):
        frequencies = {0: 6.5, 1: 6.5, 2: 6.5, 3: 6.5}
        interactions = [
            Interaction(pair=(0, 1), gate_name="iswap", frequency=6.5),
            Interaction(pair=(2, 3), gate_name="iswap", frequency=6.5),
        ]
        gates = [Gate("iswap", (0, 1)), Gate("iswap", (2, 3))]
        step = TimeStep(
            gates=gates,
            frequencies=frequencies,
            interactions=interactions,
            duration_ns=50.0,
            active_couplers={(0, 1), (2, 3)},
        )
        program = CompiledProgram(device=device4, steps=[step], name="gmon-like")
        perfect = NoiseModel(residual_coupler_factor=0.0, include_flux_noise=False)
        leaky = NoiseModel(residual_coupler_factor=0.5, include_flux_noise=False)
        assert estimate_success(program, perfect).crosstalk_fidelity_product == pytest.approx(1.0)
        assert estimate_success(program, leaky).crosstalk_fidelity_product < 0.9

    def test_distance_two_crosstalk_optional(self, device9):
        program = ColorDynamic(device9).compile(benchmark_circuit("xeb(9,3)", seed=1)).program
        near = NoiseModel(crosstalk_distance=1)
        far = NoiseModel(crosstalk_distance=2, next_neighbour_factor=0.1)
        assert (
            estimate_success(program, far).crosstalk_fidelity_product
            <= estimate_success(program, near).crosstalk_fidelity_product
        )


class TestNoiseModelHelpers:
    def test_with_residual_coupling_copies_other_fields(self):
        model = NoiseModel(two_qubit_error=0.01)
        copy = model.with_residual_coupling(0.3)
        assert copy.residual_coupler_factor == 0.3
        assert copy.two_qubit_error == 0.01

    def test_report_mean_decoherence(self, device9):
        program = ColorDynamic(device9).compile(benchmark_circuit("bv(9)", seed=1)).program
        report = estimate_success(program)
        values = list(report.decoherence_error_per_qubit.values())
        assert report.mean_decoherence_error == pytest.approx(sum(values) / len(values))
