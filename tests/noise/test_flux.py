"""Tests for the flux-noise and tuning-overhead model."""

import pytest

import numpy as np

from repro.devices import Transmon, TransmonParams
from repro.noise import (
    flux_dephasing_rate,
    flux_dephasing_rate_array,
    sweet_spot_distance,
    tuning_overhead_ns,
)


@pytest.fixture()
def transmon() -> Transmon:
    return Transmon(TransmonParams(omega_max=7.0, asymmetry=0.5))


class TestFluxDephasing:
    def test_rate_is_zero_at_sweet_spots(self, transmon):
        low, high = transmon.sweet_spots
        assert flux_dephasing_rate(transmon, high) == pytest.approx(0.0, abs=1e-6)
        assert flux_dephasing_rate(transmon, low) == pytest.approx(0.0, abs=1e-6)

    def test_rate_is_positive_between_sweet_spots(self, transmon):
        low, high = transmon.sweet_spots
        assert flux_dephasing_rate(transmon, (low + high) / 2) > 0.0

    def test_rate_scales_with_noise_amplitude(self, transmon):
        low, high = transmon.sweet_spots
        mid = (low + high) / 2
        assert flux_dephasing_rate(transmon, mid, 1e-5) == pytest.approx(
            10 * flux_dephasing_rate(transmon, mid, 1e-6)
        )

    def test_array_form_matches_scalar_entry_by_entry(self, transmon):
        low, high = transmon.tunable_range
        # Span the tunable range plus out-of-range values to exercise the clamp.
        frequencies = np.linspace(low - 0.5, high + 0.5, 41)
        rates = flux_dephasing_rate_array(transmon, frequencies)
        for freq, rate in zip(frequencies, rates):
            # np.cos vs math.cos differ in the last ulp, which the
            # finite-difference slope amplifies; demand 1e-9 relative.
            assert rate == pytest.approx(
                flux_dephasing_rate(transmon, float(freq)), rel=1e-9, abs=1e-15
            )

    def test_out_of_range_frequency_is_clamped(self, transmon):
        _, high = transmon.sweet_spots
        assert flux_dephasing_rate(transmon, high + 1.0) == pytest.approx(0.0, abs=1e-6)


class TestSweetSpotDistance:
    def test_zero_at_sweet_spot(self, transmon):
        low, _ = transmon.sweet_spots
        assert sweet_spot_distance(transmon, low) == 0.0

    def test_midpoint_distance(self, transmon):
        low, high = transmon.sweet_spots
        mid = (low + high) / 2
        assert sweet_spot_distance(transmon, mid) == pytest.approx((high - low) / 2)


class TestTuningOverhead:
    def test_first_step_has_no_overhead(self):
        assert tuning_overhead_ns(None, {0: 5.0}) == 0.0

    def test_unchanged_frequencies_have_no_overhead(self):
        assert tuning_overhead_ns({0: 5.0, 1: 6.0}, {0: 5.0, 1: 6.0}) == 0.0

    def test_any_change_costs_one_settle_time(self):
        assert tuning_overhead_ns({0: 5.0, 1: 6.0}, {0: 5.5, 1: 6.5}, settle_time_ns=2.0) == 2.0

    def test_new_qubits_do_not_trigger_overhead(self):
        assert tuning_overhead_ns({0: 5.0}, {1: 6.0}) == 0.0
