"""Tests for the shared compiled-program representation."""

import pytest

from repro.circuits import Gate
from repro.program import CompiledProgram, Interaction, TimeStep


class TestInteraction:
    def test_pair_is_normalised(self):
        interaction = Interaction(pair=(3, 1), gate_name="cz", frequency=6.4)
        assert interaction.pair == (1, 3)


class TestTimeStep:
    def test_qubits_and_interacting_sets(self):
        step = TimeStep(
            gates=[Gate("cz", (0, 1)), Gate("h", (2,))],
            frequencies={0: 6.4, 1: 6.6, 2: 5.0, 3: 5.7},
            interactions=[Interaction(pair=(0, 1), gate_name="cz", frequency=6.4)],
            duration_ns=50.0,
        )
        assert step.qubits() == {0, 1, 2}
        assert step.interacting_pairs() == {(0, 1)}
        assert step.interacting_qubits() == {0, 1}
        assert step.frequency_of(3) == 5.7

    def test_fixed_couplers_are_always_active(self):
        step = TimeStep(active_couplers=None)
        assert step.coupler_is_active((0, 1))

    def test_gmon_couplers_respect_the_active_set(self):
        step = TimeStep(active_couplers={(0, 1)})
        assert step.coupler_is_active((1, 0))
        assert not step.coupler_is_active((2, 3))


class TestCompiledProgram:
    def _program(self, device):
        steps = [
            TimeStep(
                gates=[Gate("h", (0,))],
                frequencies={q: 5.0 for q in range(device.num_qubits)},
                duration_ns=25.0,
            ),
            TimeStep(
                gates=[Gate("cz", (0, 1)), Gate("cz", (2, 3))],
                frequencies={0: 6.4, 1: 6.6, 2: 6.0, 3: 6.2},
                interactions=[
                    Interaction(pair=(0, 1), gate_name="cz", frequency=6.4),
                    Interaction(pair=(2, 3), gate_name="cz", frequency=6.0),
                ],
                duration_ns=50.0,
            ),
        ]
        return CompiledProgram(device=device, steps=steps, name="toy", strategy="manual")

    def test_depth_and_duration(self, device4):
        program = self._program(device4)
        assert program.depth == 2
        assert program.total_duration_ns == pytest.approx(75.0)

    def test_gate_aggregation(self, device4):
        program = self._program(device4)
        assert len(program.all_gates()) == 3
        assert program.num_two_qubit_gates() == 2

    def test_max_parallel_interactions_and_colors(self, device4):
        program = self._program(device4)
        assert program.max_parallel_interactions() == 2
        assert program.colors_used() == 2

    def test_to_circuit_preserves_order(self, device4):
        program = self._program(device4)
        flat = program.to_circuit()
        assert [g.name for g in flat] == ["h", "cz", "cz"]
        assert flat.num_qubits == device4.num_qubits

    def test_qubit_busy_time_covers_whole_program(self, device4):
        program = self._program(device4)
        busy = program.qubit_busy_time_ns()
        assert all(v == pytest.approx(75.0) for v in busy.values())
        assert set(busy) == set(range(device4.num_qubits))
