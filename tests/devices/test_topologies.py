"""Tests for the connectivity-graph generators."""


import networkx as nx
import pytest

from repro.devices import (
    FIG13_TOPOLOGY_NAMES,
    all_to_all_graph,
    express_1d,
    express_2d,
    grid_coordinates,
    grid_graph,
    heavy_hex_graph,
    linear_graph,
    ring_graph,
    topology_by_name,
)


class TestGrid:
    @pytest.mark.parametrize("n,edges", [(4, 4), (9, 12), (16, 24), (25, 40)])
    def test_grid_edge_count(self, n, edges):
        graph = grid_graph(n)
        assert graph.number_of_nodes() == n
        assert graph.number_of_edges() == edges

    def test_grid_is_bipartite(self):
        assert nx.is_bipartite(grid_graph(25))

    def test_grid_requires_square(self):
        with pytest.raises(ValueError):
            grid_graph(12)

    def test_grid_coordinates(self):
        coords = grid_coordinates(9)
        assert coords[0] == (0, 0)
        assert coords[4] == (1, 1)
        assert coords[8] == (2, 2)

    def test_grid_max_degree_is_four(self):
        assert max(dict(grid_graph(25).degree).values()) == 4


class TestLinearAndRing:
    def test_linear_edge_count(self):
        assert linear_graph(10).number_of_edges() == 9

    def test_ring_edge_count(self):
        assert ring_graph(10).number_of_edges() == 10

    def test_linear_is_connected(self):
        assert nx.is_connected(linear_graph(16))


class TestExpressCubes:
    def test_1d_express_adds_links(self):
        base = linear_graph(16).number_of_edges()
        expressed = express_1d(16, 4).number_of_edges()
        assert expressed > base

    def test_1d_express_density_increases_with_smaller_k(self):
        counts = [express_1d(16, k).number_of_edges() for k in (5, 4, 3, 2)]
        assert counts == sorted(counts)

    def test_2d_express_adds_links(self):
        base = grid_graph(16).number_of_edges()
        expressed = express_2d(16, 2).number_of_edges()
        assert expressed > base

    def test_2d_express_density_increases_with_smaller_k(self):
        counts = [express_2d(25, k).number_of_edges() for k in (4, 3, 2)]
        assert counts == sorted(counts)

    def test_express_requires_k_at_least_two(self):
        with pytest.raises(ValueError):
            express_1d(16, 1)
        with pytest.raises(ValueError):
            express_2d(16, 0)

    def test_express_preserves_node_count(self):
        assert express_1d(16, 3).number_of_nodes() == 16
        assert express_2d(16, 3).number_of_nodes() == 16


class TestOtherTopologies:
    def test_all_to_all(self):
        graph = all_to_all_graph(6)
        assert graph.number_of_edges() == 15

    def test_heavy_hex_has_degree_at_most_three(self):
        graph = heavy_hex_graph(2)
        assert max(dict(graph.degree).values()) <= 3

    def test_heavy_hex_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            heavy_hex_graph(0)


class TestTopologyByName:
    @pytest.mark.parametrize("name", FIG13_TOPOLOGY_NAMES)
    def test_every_fig13_name_builds(self, name):
        graph = topology_by_name(name, 16)
        assert graph.number_of_nodes() == 16
        assert nx.is_connected(graph)

    def test_fig13_density_is_monotone_over_the_name_order(self):
        counts = [topology_by_name(name, 16).number_of_edges() for name in FIG13_TOPOLOGY_NAMES]
        # The express-cube family is ordered from sparse to dense in Fig. 13.
        assert counts[0] == min(counts)
        assert counts[-1] == max(counts)
        assert counts[5] == grid_graph(16).number_of_edges()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            topology_by_name("torus", 16)

    def test_ring_and_all_to_all_names(self):
        assert topology_by_name("ring", 8).number_of_edges() == 8
        assert topology_by_name("all-to-all", 5).number_of_edges() == 10
