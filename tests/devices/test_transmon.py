"""Tests for the flux-tunable transmon model."""


import pytest
from hypothesis import given, strategies as st

from repro.devices import Transmon, TransmonParams


@pytest.fixture()
def transmon() -> Transmon:
    return Transmon(TransmonParams(omega_max=7.0, asymmetry=0.5), index=3)


class TestParamsValidation:
    def test_negative_omega_rejected(self):
        with pytest.raises(ValueError):
            TransmonParams(omega_max=-1.0)

    def test_positive_anharmonicity_rejected(self):
        with pytest.raises(ValueError):
            TransmonParams(anharmonicity=0.2)

    def test_asymmetry_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TransmonParams(asymmetry=1.5)

    def test_nonpositive_coherence_rejected(self):
        with pytest.raises(ValueError):
            TransmonParams(t1_ns=0.0)

    def test_omega_min_formula(self):
        params = TransmonParams(omega_max=6.0, asymmetry=0.25, anharmonicity=-0.2)
        assert params.omega_min == pytest.approx((6.0 + 0.2) * 0.5 - 0.2)

    def test_with_coherence_returns_copy(self):
        params = TransmonParams()
        other = params.with_coherence(1000.0, 2000.0)
        assert other.t1_ns == 1000.0
        assert params.t1_ns != 1000.0


class TestFluxCurve:
    def test_upper_sweet_spot_at_zero_flux(self, transmon):
        assert transmon.frequency_01(0.0) == pytest.approx(transmon.params.omega_max)

    def test_lower_sweet_spot_at_half_flux(self, transmon):
        low = transmon.frequency_01(0.5)
        assert low == pytest.approx(transmon.params.omega_min, abs=1e-9)

    def test_frequency_decreases_with_flux(self, transmon):
        freqs = [transmon.frequency_01(phi) for phi in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_omega12_below_omega01(self, transmon):
        assert transmon.frequency_12(0.2) < transmon.frequency_01(0.2)
        assert transmon.frequency_12(0.2) == pytest.approx(
            transmon.frequency_01(0.2) + transmon.params.anharmonicity
        )

    def test_omega02_is_sum_of_transitions(self, transmon):
        assert transmon.frequency_02(0.1) == pytest.approx(
            transmon.frequency_01(0.1) + transmon.frequency_12(0.1)
        )

    @given(flux=st.floats(min_value=0.0, max_value=0.5))
    def test_frequency_stays_within_tunable_range(self, flux):
        transmon = Transmon(TransmonParams(omega_max=7.0, asymmetry=0.5))
        low, high = transmon.tunable_range
        assert low - 1e-6 <= transmon.frequency_01(flux) <= high + 1e-6

    @given(omega=st.floats(min_value=0.0, max_value=1.0))
    def test_flux_inversion_round_trips(self, omega):
        transmon = Transmon(TransmonParams(omega_max=7.0, asymmetry=0.5))
        low, high = transmon.tunable_range
        target = low + omega * (high - low)
        flux = transmon.flux_for_frequency(target)
        assert transmon.frequency_01(flux) == pytest.approx(target, abs=1e-6)

    def test_out_of_range_frequency_raises(self, transmon):
        with pytest.raises(ValueError):
            transmon.flux_for_frequency(transmon.params.omega_max + 1.0)


class TestOperatingPoints:
    def test_sweet_spots_match_tunable_range(self, transmon):
        assert transmon.sweet_spots == transmon.tunable_range

    def test_sensitivity_is_zero_at_sweet_spots(self, transmon):
        assert transmon.flux_sensitivity(0.0) == pytest.approx(0.0, abs=0.05)
        assert transmon.flux_sensitivity(0.5) == pytest.approx(0.0, abs=0.05)

    def test_sensitivity_positive_between_sweet_spots(self, transmon):
        assert transmon.flux_sensitivity(0.25) > 0.5

    def test_contains_frequency(self, transmon):
        low, high = transmon.tunable_range
        assert transmon.contains_frequency((low + high) / 2)
        assert not transmon.contains_frequency(high + 0.5)
