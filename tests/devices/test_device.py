"""Tests for the Device model."""

import networkx as nx
import pytest

from repro.devices import DEFAULT_COUPLING_GHZ, Device, TransmonParams, linear_graph


class TestConstruction:
    def test_grid_factory(self, device16):
        assert device16.num_qubits == 16
        assert device16.graph.number_of_edges() == 24
        assert not device16.tunable_couplers

    def test_seeded_construction_is_reproducible(self):
        a = Device.grid(9, seed=42)
        b = Device.grid(9, seed=42)
        assert [q.params.omega_max for q in a.qubits] == [q.params.omega_max for q in b.qubits]

    def test_different_seeds_differ(self):
        a = Device.grid(9, seed=1)
        b = Device.grid(9, seed=2)
        assert [q.params.omega_max for q in a.qubits] != [q.params.omega_max for q in b.qubits]

    def test_omega_max_sampling_near_mean(self):
        device = Device.grid(25, omega_max_mean=6.5, omega_max_std=0.05, seed=3)
        values = [q.params.omega_max for q in device.qubits]
        assert 6.3 < sum(values) / len(values) < 6.7

    def test_from_topology_name(self):
        device = Device.from_topology_name("1EX-3", 9, seed=0)
        assert device.num_qubits == 9
        assert device.name.startswith("1EX-3")

    def test_from_graph_relabels_nodes(self):
        graph = nx.relabel_nodes(linear_graph(4), {0: "a", 1: "b", 2: "c", 3: "d"})
        device = Device.from_graph(graph, seed=0)
        assert set(device.graph.nodes) == {0, 1, 2, 3}

    def test_base_params_are_propagated(self):
        base = TransmonParams(t1_ns=5000.0, t2_ns=6000.0)
        device = Device.grid(4, base_params=base, seed=0)
        assert all(q.params.t1_ns == 5000.0 for q in device.qubits)

    def test_missing_coupling_rejected(self, device4):
        with pytest.raises(ValueError):
            Device(graph=device4.graph, qubits=device4.qubits, couplings={})


class TestQueries:
    def test_edges_are_sorted_pairs(self, device9):
        for a, b in device9.edges():
            assert a < b

    def test_neighbors(self, device9):
        assert device9.neighbors(4) == [1, 3, 5, 7]

    def test_coupling_strength_default(self, device9):
        assert device9.coupling_strength(0, 1) == pytest.approx(DEFAULT_COUPLING_GHZ)

    def test_coupling_strength_unknown_pair_raises(self, device9):
        with pytest.raises(KeyError):
            device9.coupling_strength(0, 8)

    def test_distance(self, device9):
        assert device9.distance(0, 8) == 4
        assert device9.distance(0, 1) == 1

    def test_common_tunable_range_is_intersection(self, device9):
        low, high = device9.common_tunable_range()
        assert low == pytest.approx(max(q.tunable_range[0] for q in device9.qubits))
        assert high == pytest.approx(min(q.tunable_range[1] for q in device9.qubits))
        assert low < high

    def test_coordinates_on_grid(self, device9):
        coords = device9.coordinates()
        assert coords is not None
        assert coords[4] == (1, 1)

    def test_coordinates_on_non_square_device(self):
        device = Device.from_graph(linear_graph(5), seed=0)
        assert device.coordinates() is None

    def test_with_tunable_couplers(self, device4):
        gmon = device4.with_tunable_couplers()
        assert gmon.tunable_couplers
        assert not device4.tunable_couplers
        assert gmon.num_qubits == device4.num_qubits
