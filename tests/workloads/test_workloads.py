"""Tests for the Table II benchmark generators and suite registry."""


import pytest

from repro.circuits import Circuit
from repro.workloads import (
    BENCHMARK_FAMILIES,
    benchmark_circuit,
    bernstein_vazirani,
    fig09_benchmarks,
    fig10_benchmarks,
    fig11_benchmarks,
    fig12_benchmarks,
    fig13_benchmarks,
    ising_chain,
    parse_benchmark_name,
    qaoa_maxcut,
    qgan_generator,
    table2_rows,
    xeb_circuit,
    xeb_patterns,
)
from repro.devices import grid_graph
from repro.sim import simulate_statevector, measurement_probabilities


class TestBV:
    def test_qubit_count_and_structure(self):
        circuit = bernstein_vazirani(5, secret=[1, 0, 1, 1])
        assert circuit.num_qubits == 5
        assert circuit.gate_counts()["cx"] == 3

    def test_secret_length_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret=[1, 0])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)

    def test_random_secret_is_reproducible(self):
        a = bernstein_vazirani(6, seed=3)
        b = bernstein_vazirani(6, seed=3)
        assert [g.qubits for g in a] == [g.qubits for g in b]

    def test_omitted_seed_is_still_deterministic(self):
        """Regression (lint rule RPL003): seed=None used to reach
        default_rng() and draw a fresh secret from OS entropy per call."""
        a = bernstein_vazirani(8)
        b = bernstein_vazirani(8)
        assert [(g.name, g.qubits) for g in a] == [(g.name, g.qubits) for g in b]

    def test_bv_recovers_the_secret(self):
        """Simulating BV must reveal the hidden string deterministically."""
        secret = [1, 0, 1]
        circuit = bernstein_vazirani(4, secret=secret)
        state = simulate_statevector(circuit)
        probs = measurement_probabilities(state)
        # Marginalise over the ancilla (least significant bit): the data
        # register must read the secret with certainty.
        data_probs = {}
        for index, p in enumerate(probs):
            data = index >> 1
            data_probs[data] = data_probs.get(data, 0.0) + float(p)
        secret_index = int("".join(str(b) for b in secret), 2)
        assert data_probs[secret_index] == pytest.approx(1.0)


class TestQAOA:
    def test_structure(self):
        circuit = qaoa_maxcut(6, rounds=2, seed=1)
        counts = circuit.gate_counts()
        assert counts["h"] == 6
        assert counts["rx"] == 12
        assert counts["rzz"] >= 1

    def test_omitted_seed_is_still_deterministic(self):
        """Regression (lint rule RPL003): seed=None used to reach both
        default_rng() and the Erdős–Rényi sampler, so two calls built
        different problem graphs and angles from OS entropy."""
        a = qaoa_maxcut(8, rounds=2)
        b = qaoa_maxcut(8, rounds=2)
        assert [(g.name, g.qubits, g.params) for g in a] == [
            (g.name, g.qubits, g.params) for g in b
        ]

    def test_rzz_count_matches_problem_graph(self):
        import networkx as nx

        graph = nx.cycle_graph(5)
        circuit = qaoa_maxcut(5, rounds=1, problem_graph=graph, seed=1)
        assert circuit.gate_counts()["rzz"] == 5

    def test_angle_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(4, rounds=2, gammas=[0.1], betas=[0.1, 0.2], seed=1)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(1)

    def test_oversized_problem_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            qaoa_maxcut(3, problem_graph=nx.complete_graph(5), seed=1)


class TestIsing:
    def test_structure(self):
        circuit = ising_chain(6, trotter_steps=2)
        counts = circuit.gate_counts()
        assert counts["h"] == 6
        assert counts["rzz"] == 2 * 5  # (n-1) bonds per Trotter step
        assert counts["rx"] == 2 * 6

    def test_bonds_alternate_even_odd(self):
        circuit = ising_chain(4, trotter_steps=1, initial_state_layer=False)
        pairs = [g.qubits for g in circuit if g.name == "rzz"]
        assert pairs == [(0, 1), (2, 3), (1, 2)]

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ising_chain(1)


class TestQGAN:
    def test_structure(self):
        circuit = qgan_generator(5, layers=2, seed=1)
        counts = circuit.gate_counts()
        assert counts["ry"] == 2 * 5 + 5
        assert counts["rz"] == 2 * 5
        assert counts["cx"] == 2 * 4

    def test_cz_entangler_option(self):
        circuit = qgan_generator(4, layers=1, entangler="cz", seed=1)
        assert "cz" in circuit.gate_counts()
        assert "cx" not in circuit.gate_counts()

    def test_invalid_entangler_rejected(self):
        with pytest.raises(ValueError):
            qgan_generator(4, entangler="iswap")

    def test_seeded_angles_are_reproducible(self):
        a = qgan_generator(4, seed=9)
        b = qgan_generator(4, seed=9)
        assert [g.params for g in a] == [g.params for g in b]


class TestXEB:
    def test_cycle_structure(self):
        circuit = xeb_circuit(9, 4, seed=1)
        two_qubit = circuit.num_two_qubit_gates()
        assert two_qubit > 0
        assert circuit.depth() >= 8  # alternating 1q / 2q layers

    def test_patterns_partition_grid_edges(self):
        patterns = xeb_patterns(grid_graph(16))
        covered = {pair for pattern in patterns for pair in pattern}
        assert covered == {tuple(sorted(e)) for e in grid_graph(16).edges}
        for pattern in patterns:
            qubits = [q for pair in pattern for q in pair]
            assert len(qubits) == len(set(qubits))

    def test_non_square_requires_coupling_graph(self):
        import networkx as nx

        with pytest.raises(ValueError):
            xeb_circuit(6, 2)
        circuit = xeb_circuit(6, 2, coupling_graph=nx.path_graph(6))
        assert circuit.num_qubits == 6
        assert circuit.num_two_qubit_gates() > 0

    def test_gate_choice(self):
        circuit = xeb_circuit(9, 2, two_qubit_gate="cz", seed=1)
        assert "cz" in circuit.gate_counts()
        with pytest.raises(ValueError):
            xeb_circuit(9, 2, two_qubit_gate="cx")

    def test_cycles_validation(self):
        with pytest.raises(ValueError):
            xeb_circuit(9, 0)

    def test_more_cycles_means_more_gates(self):
        short = xeb_circuit(9, 2, seed=1)
        long = xeb_circuit(9, 6, seed=1)
        assert len(long) > len(short)


class TestSuiteRegistry:
    def test_parse_simple_name(self):
        spec = parse_benchmark_name("bv(16)")
        assert spec.family == "bv"
        assert spec.num_qubits == 16

    def test_parse_xeb_name(self):
        spec = parse_benchmark_name("xeb(25, 10)")
        assert spec.args == (25, 10)
        assert str(spec) == "xeb(25,10)"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_benchmark_name("shor[15]")
        with pytest.raises(ValueError):
            parse_benchmark_name("grover(4)")

    def test_benchmark_circuit_dispatch(self):
        circuit = benchmark_circuit("ising(4)")
        assert isinstance(circuit, Circuit)
        assert circuit.num_qubits == 4

    def test_benchmark_circuit_argument_validation(self):
        with pytest.raises(ValueError):
            benchmark_circuit("xeb(9)")
        with pytest.raises(ValueError):
            benchmark_circuit("bv(9,2)")

    def test_fig09_suite_matches_paper_layout(self):
        names = fig09_benchmarks()
        assert len(names) == 22
        assert names[0] == "bv(4)"
        assert "xeb(25,15)" in names
        assert "qaoa(16)" not in names  # excluded in the paper (success < 1e-4)

    def test_other_suites_are_well_formed(self):
        for suite in (fig10_benchmarks(), fig11_benchmarks(), fig12_benchmarks(), fig13_benchmarks()):
            assert suite
            for name in suite:
                parse_benchmark_name(name)

    def test_table2_rows_cover_all_families(self):
        rows = dict(table2_rows())
        assert len(rows) == len(BENCHMARK_FAMILIES)

    def test_every_family_builds_a_small_instance(self):
        for family in BENCHMARK_FAMILIES:
            name = f"{family}(4,2)" if family == "xeb" else f"{family}(4)"
            circuit = benchmark_circuit(name, seed=0)
            assert circuit.num_qubits == 4
            assert len(circuit) > 0
