"""Fixtures for the differential suites (generators live in diffgen.py).

Setting ``REPRO_TRACE=1`` runs the whole differential suite with span
tracing enabled — the CI differential job does exactly that, proving the
instrumentation can never influence compiled output.  The variable is
captured here at import time because the session-scoped hermetic fixture
pins (pops) it before any test runs.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import obs
from repro.cli import _TRACE_FALSY
from repro.obs import get_tracer

_TRACE_REQUESTED = (
    os.environ.get("REPRO_TRACE", "").strip().lower() not in _TRACE_FALSY
)


@pytest.fixture(autouse=True)
def _trace_if_requested():
    """Run each differential test traced when REPRO_TRACE was set.

    Spans are drained after every test so the buffer never grows across
    the suite; results must be bit-identical either way.
    """
    if not _TRACE_REQUESTED:
        yield
        return
    tracer = get_tracer()
    tracer.clear()
    obs.set_enabled(True)
    try:
        yield
    finally:
        obs.set_enabled(False)
        tracer.drain()


@pytest.fixture
def rng_for(request):
    """Seeded Random bound to the current test id (stable across runs)."""
    return random.Random(hash(request.node.nodeid) & 0xFFFF)
