"""Fixtures for the differential suites (generators live in diffgen.py)."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng_for(request):
    """Seeded Random bound to the current test id (stable across runs)."""
    return random.Random(hash(request.node.nodeid) & 0xFFFF)
