"""Differential: IncrementalEstimator vs from-scratch ``estimate_success``.

The contract under test: after *any* mutation sequence (append / replace /
pop), the estimator's report is bit-identical — every float compared with
``==``, never a tolerance — to a from-scratch vectorized ``estimate_success``
on the program assembled from the same steps.  Exercised for all five
strategies, across noise-model configurations, on seeded random circuits and
seeded random mutation sequences.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.experiments import STRATEGIES
from repro.noise import IncrementalEstimator, NoiseModel, estimate_success
from repro.program import CompiledProgram
from repro.service import make_compiler
from repro.service.compile_service import build_device_for
from repro.workloads import benchmark_circuit

from diffgen import random_circuit, random_device

MODELS = {
    "default": NoiseModel(),
    "distance2": NoiseModel(crosstalk_distance=2),
    "residual": NoiseModel(residual_coupler_factor=0.3),
    "no-flux": NoiseModel(include_flux_noise=False),
    "no-leakage": NoiseModel(include_leakage=False),
    "oscillatory": NoiseModel(worst_case=False),
}


def assert_reports_bit_identical(fast, reference, context=""):
    assert fast.success_rate == reference.success_rate, context
    assert fast.gate_fidelity_product == reference.gate_fidelity_product, context
    assert (
        fast.crosstalk_fidelity_product == reference.crosstalk_fidelity_product
    ), context
    assert (
        fast.decoherence_fidelity_product == reference.decoherence_fidelity_product
    ), context
    assert fast.crosstalk_error_total == reference.crosstalk_error_total, context
    assert fast.worst_spectator_error == reference.worst_spectator_error, context
    assert (
        fast.decoherence_error_per_qubit == reference.decoherence_error_per_qubit
    ), context
    assert fast.depth == reference.depth, context
    assert fast.duration_ns == reference.duration_ns, context
    assert fast.num_two_qubit_gates == reference.num_two_qubit_gates, context
    assert fast.num_single_qubit_gates == reference.num_single_qubit_gates, context
    assert (
        fast.num_virtual_single_qubit_gates
        == reference.num_virtual_single_qubit_gates
    ), context


def _mutate(estimator, steps, donor_steps, rng):
    """Apply one random mutation to both the estimator and the step list."""
    op = rng.choice(["replace", "pop", "append", "append"])
    if op == "replace" and steps:
        i = rng.randrange(len(steps))
        step = rng.choice(donor_steps)
        steps[i] = step
        estimator.set_step(i, step)
    elif op == "pop" and steps:
        steps.pop()
        estimator.pop_step()
    else:
        step = rng.choice(donor_steps)
        steps.append(step)
        estimator.append_step(step)


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_full_program_matches_all_models(strategy):
    """Appending a compiled program step by step == one-shot estimation."""
    device = build_device_for("xeb(16,5)")
    circuit = benchmark_circuit("xeb(16,5)", seed=2020)
    program = make_compiler(strategy, device).compile(circuit).program
    for name, model in MODELS.items():
        # program.device: Baseline G compiles on the coupler-wrapped device.
        estimator = IncrementalEstimator(program.device, model).load_program(program)
        assert_reports_bit_identical(
            estimator.report(),
            estimate_success(program, model),
            f"{strategy} [{name}]",
        )


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(6))
def test_mutation_sequences_match_from_scratch(strategy, seed):
    """Random append/replace/pop sequences stay bit-identical throughout."""
    rng = random.Random(seed * 977 + 13)
    device = random_device(seed)
    circuit = random_circuit(device.num_qubits, seed)
    program = make_compiler(strategy, device).compile(circuit).program
    if not program.steps:
        pytest.skip("degenerate random circuit")
    donor = list(program.steps)

    estimator = IncrementalEstimator(program.device)
    steps = []
    for iteration in range(12):
        _mutate(estimator, steps, donor, rng)
        mutated = CompiledProgram(
            device=program.device, steps=list(steps), name="mutated", strategy=strategy
        )
        assert_reports_bit_identical(
            estimator.report(),
            estimate_success(mutated),
            f"{strategy} seed={seed} it={iteration}",
        )


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_estimator_fed_by_compile_matches(strategy):
    """The estimator the compiler feeds during compile equals a fresh pass."""
    device = build_device_for("qaoa(16)")
    circuit = benchmark_circuit("qaoa(16)", seed=2020)
    compiler = make_compiler(strategy, device)
    estimator = IncrementalEstimator(compiler.device)
    result = compiler.compile(circuit, estimator=estimator)
    assert len(estimator) == result.program.depth
    assert_reports_bit_identical(
        estimator.report(), estimate_success(result.program), strategy
    )


@pytest.mark.differential
def test_preview_step_does_not_mutate():
    device = build_device_for("xeb(9,2)")
    circuit = benchmark_circuit("xeb(9,2)", seed=2020)
    program = make_compiler("ColorDynamic", device).compile(circuit).program
    estimator = IncrementalEstimator(device).load_program(program)
    before = estimator.report()

    previewed = estimator.preview_step(program.steps[0])
    extended = CompiledProgram(
        device=device,
        steps=list(program.steps) + [program.steps[0]],
        name="preview",
    )
    assert previewed == estimate_success(extended).success_rate
    assert_reports_bit_identical(estimator.report(), before, "post-preview")

    replaced = estimator.preview_step(program.steps[0], index=len(program.steps) - 1)
    swapped = CompiledProgram(
        device=device,
        steps=list(program.steps[:-1]) + [program.steps[0]],
        name="preview2",
    )
    assert replaced == estimate_success(swapped).success_rate
    assert_reports_bit_identical(estimator.report(), before, "post-preview-replace")


@pytest.mark.differential
def test_empty_estimator_matches_empty_program(device4):
    estimator = IncrementalEstimator(device4)
    empty = CompiledProgram(device=device4, steps=[], name="empty")
    assert_reports_bit_identical(estimator.report(), estimate_success(empty))
