"""Seeded random generators for the differential fast-vs-reference suites.

Every generator is a pure function of its ``seed`` so failures replay
exactly; tests name the seed in their parametrization, giving well over a
hundred independently generated cases across the suite.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import networkx as nx

from repro.circuits import Circuit
from repro.core.crosstalk_graph import build_crosstalk_graph
from repro.devices import Device, grid_graph

Coupling = Tuple[int, int]


def random_connectivity(seed: int) -> nx.Graph:
    """A random connected device-like graph: a grid with edges dropped/added."""
    rng = random.Random(seed)
    side = rng.choice([2, 3, 4, 5, 6])
    graph = grid_graph(side * side)
    edges = sorted(graph.edges)
    rng.shuffle(edges)
    for edge in edges[: rng.randrange(0, max(1, len(edges) // 4))]:
        graph.remove_edge(*edge)
        if not nx.is_connected(graph):
            graph.add_edge(*edge)
    nodes = sorted(graph.nodes)
    for _ in range(rng.randrange(0, 4)):  # a few express links
        a, b = rng.sample(nodes, 2)
        graph.add_edge(*sorted((a, b)))
    return graph


def random_crosstalk_graph(seed: int) -> nx.Graph:
    """Crosstalk graph of a random connectivity at distance 1 or 2."""
    rng = random.Random(seed ^ 0x5EED)
    return build_crosstalk_graph(random_connectivity(seed), distance=rng.choice([1, 1, 2]))


def random_active_subset(graph: nx.Graph, seed: int) -> List[Coupling]:
    """A random non-empty subset of the graph's vertices (couplings)."""
    rng = random.Random(seed ^ 0xAC7)
    nodes = sorted(graph.nodes)
    return rng.sample(nodes, rng.randint(1, len(nodes)))


def random_device(seed: int) -> Device:
    """A seeded grid device of random size."""
    rng = random.Random(seed ^ 0xD3)
    side = rng.choice([2, 3, 4])
    return Device.grid(side * side, seed=rng.randrange(10_000))


def random_circuit(num_qubits: int, seed: int) -> Circuit:
    """A random circuit over the device's qubits (mixed 1q/2q/virtual gates)."""
    rng = random.Random(seed ^ 0xC1C)
    circuit = Circuit(num_qubits, name=f"diff-{seed}")
    num_gates = rng.randint(5, 60)
    one_qubit = ["h", "x", "sx", "z", "t", "rz", "rx"]
    two_qubit = ["cz", "cx", "iswap", "sqrt_iswap", "swap", "rzz", "cphase"]
    for _ in range(num_gates):
        if rng.random() < 0.45 and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            name = rng.choice(two_qubit)
            if name in ("rzz", "cphase"):
                circuit.add(name, a, b, params=(rng.uniform(0.1, 3.0),))
            else:
                circuit.add(name, a, b)
        else:
            q = rng.randrange(num_qubits)
            name = rng.choice(one_qubit)
            if name in ("rz", "rx"):
                circuit.add(name, q, params=(rng.uniform(0.1, 3.0),))
            else:
                circuit.add(name, q)
    if rng.random() < 0.5:
        circuit.measure_all()
    return circuit




def random_native_circuit(device: Device, seed: int) -> Circuit:
    """A native-gate circuit whose two-qubit gates all sit on device edges."""
    rng = random.Random(seed ^ 0xDA7)
    circuit = Circuit(device.num_qubits, name=f"native-{seed}")
    edges = sorted(tuple(sorted(e)) for e in device.edges())
    for _ in range(rng.randint(10, 80)):
        if rng.random() < 0.5 and edges:
            a, b = rng.choice(edges)
            circuit.add(rng.choice(["cz", "iswap", "sqrt_iswap"]), a, b)
        else:
            q = rng.randrange(device.num_qubits)
            name = rng.choice(["h", "x", "sx", "z", "rz"])
            if name == "rz":
                circuit.add(name, q, params=(rng.uniform(0.1, 3.0),))
            else:
                circuit.add(name, q)
    return circuit
