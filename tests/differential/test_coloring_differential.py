"""Differential: bitset coloring kernels vs the networkx reference.

Seeded random crosstalk graphs and random active subsets drive
:class:`repro.core.GraphIndex` against the reference implementations.  The
acceptance bar from the issue — the fast coloring must be *valid* and use no
more colors than reference Welsh–Powell — is asserted explicitly, and on top
of that the kernels are held to exact output equality (the compiler's
frequency assignments consume the colorings, so bit-identical compiled
programs require identical colorings, not merely equally good ones).
"""

from __future__ import annotations

import pytest

from repro.core.coloring import (
    GraphIndex,
    bounded_coloring,
    num_colors,
    validate_coloring,
    welsh_powell_coloring,
)
from repro.core.crosstalk_graph import active_subgraph

from diffgen import random_active_subset, random_crosstalk_graph

SEEDS = range(60)


@pytest.mark.differential
@pytest.mark.parametrize("seed", SEEDS)
def test_indexed_welsh_powell_matches_reference(seed):
    graph = random_crosstalk_graph(seed)
    index = GraphIndex(graph)
    active = random_active_subset(graph, seed)
    subgraph = active_subgraph(graph, active)

    fast = index.welsh_powell(active)
    reference = welsh_powell_coloring(subgraph)

    # Issue acceptance bar: valid coloring, color count <= reference.
    assert validate_coloring(subgraph, fast)
    assert set(fast) == set(subgraph.nodes)
    assert num_colors(fast) <= num_colors(reference)
    # Stronger: the kernels are exact twins.
    assert fast == reference


@pytest.mark.differential
@pytest.mark.parametrize("seed", SEEDS)
def test_indexed_welsh_powell_full_graph(seed):
    graph = random_crosstalk_graph(seed)
    index = GraphIndex(graph)
    fast = index.welsh_powell()
    reference = welsh_powell_coloring(graph)
    assert validate_coloring(graph, fast)
    assert fast == reference


@pytest.mark.differential
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_colors", [1, 2, 3, 4])
def test_indexed_bounded_coloring_matches_reference(seed, max_colors):
    graph = random_crosstalk_graph(seed)
    index = GraphIndex(graph)
    active = random_active_subset(graph, seed)
    subgraph = active_subgraph(graph, active)

    fast_coloring, fast_deferred = index.bounded(max_colors, active)
    ref_coloring, ref_deferred = bounded_coloring(subgraph, max_colors)

    assert validate_coloring(subgraph, fast_coloring)
    assert all(color < max_colors for color in fast_coloring.values())
    assert fast_coloring == ref_coloring
    assert fast_deferred == ref_deferred


@pytest.mark.differential
def test_indexed_bounded_respects_priority(rng_for):
    graph = random_crosstalk_graph(7)
    index = GraphIndex(graph)
    nodes = sorted(graph.nodes)
    priority = {node: rng_for.uniform(0.0, 10.0) for node in nodes}
    fast = index.bounded(2, nodes, priority=priority)
    reference = bounded_coloring(graph, 2, priority=priority)
    assert fast == reference


@pytest.mark.differential
def test_index_rejects_unknown_vertices():
    graph = random_crosstalk_graph(3)
    index = GraphIndex(graph)
    with pytest.raises(KeyError):
        index.welsh_powell([(998, 999)])
