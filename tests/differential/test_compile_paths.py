"""Differential: indexed compile plane vs reference paths, end to end.

Compiles seeded random circuits (and a few real benchmarks) with
``indexed_kernels=True`` and ``indexed_kernels=False`` for every strategy and
asserts the emitted programs are bit-identical through the versioned codec —
frequencies, durations, interactions, colorings, everything except the
wall-clock ``compile_time_s``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import STRATEGIES
from repro.service import make_compiler
from repro.service.compile_service import build_device_for
from repro.workloads import benchmark_circuit

from diffgen import random_circuit, random_device  # noqa: E402 (sys.path via pytest)


def _canonical(result):
    payload = result.to_dict()
    payload.pop("compile_time_s")
    payload["program"]["metadata"].pop("compile_time_s", None)
    return json.dumps(payload, sort_keys=True)


def assert_paths_bit_identical(strategy, device, circuit, max_colors=None):
    fast = make_compiler(strategy, device, max_colors, indexed_kernels=True)
    reference = make_compiler(strategy, device, max_colors, indexed_kernels=False)
    fast_result = fast.compile(circuit)
    ref_result = reference.compile(circuit)
    assert _canonical(fast_result) == _canonical(ref_result), (
        f"{strategy} diverged on {circuit.name}"
    )


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(8))
def test_random_circuits_compile_identically(strategy, seed):
    device = random_device(seed)
    circuit = random_circuit(device.num_qubits, seed)
    assert_paths_bit_identical(strategy, device, circuit)


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("bench", ["xeb(16,5)", "qaoa(16)", "bv(16)"])
def test_benchmarks_compile_identically(strategy, bench):
    device = build_device_for(bench)
    circuit = benchmark_circuit(bench, seed=2020)
    assert_paths_bit_identical(strategy, device, circuit)


@pytest.mark.differential
@pytest.mark.parametrize("max_colors", [1, 2, 3])
def test_color_budgets_compile_identically(max_colors):
    """The bounded-coloring probe (Fig. 11 knob) stays decision-identical."""
    device = build_device_for("xeb(16,5)")
    circuit = benchmark_circuit("xeb(16,5)", seed=2020)
    assert_paths_bit_identical("ColorDynamic", device, circuit, max_colors=max_colors)


@pytest.mark.differential
@pytest.mark.parametrize("strategy", ["ColorDynamic", "Baseline U"])
def test_tracing_never_changes_compiled_output(strategy):
    """Compiling with span tracing on is bit-identical to tracing off."""
    from repro import obs
    from repro.obs import get_tracer

    device = build_device_for("bv(16)")
    circuit = benchmark_circuit("bv(16)", seed=2020)
    compiler = make_compiler(strategy, device, None, indexed_kernels=True)

    tracer = get_tracer()
    was_enabled = obs.is_enabled()
    try:
        obs.set_enabled(False)
        plain = _canonical(compiler.compile(circuit))
        obs.set_enabled(True)
        traced = _canonical(compiler.compile(circuit))
        spans = tracer.drain()
    finally:
        obs.set_enabled(was_enabled)
        tracer.clear()

    assert any(r["name"] == "compile" for r in spans)
    assert traced == plain


@pytest.mark.differential
@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(8, 40))
def test_random_circuits_compile_identically_deep(strategy, seed):
    """Deep sweep (excluded from tier-1 by the ``slow`` marker)."""
    device = random_device(seed)
    circuit = random_circuit(device.num_qubits, seed)
    assert_paths_bit_identical(strategy, device, circuit)


@pytest.mark.differential
def test_scheduler_reference_and_indexed_emit_same_steps():
    """Step-level check: same gates, couplings, indices, base durations."""
    from repro.core import NoiseAwareScheduler, build_crosstalk_graph

    from diffgen import random_native_circuit

    device = random_device(17)
    circuit = random_native_circuit(device, 17)
    graph = build_crosstalk_graph(device.graph, 1)
    for max_colors, threshold in [(None, 3), (2, 1), (None, None)]:
        fast = NoiseAwareScheduler(
            graph, max_colors=max_colors, conflict_threshold=threshold, indexed=True
        ).schedule(circuit)
        reference = NoiseAwareScheduler(
            graph, max_colors=max_colors, conflict_threshold=threshold, indexed=False
        ).schedule(circuit)
        assert [s.indices for s in fast] == [s.indices for s in reference]
        assert [s.couplings for s in fast] == [s.couplings for s in reference]
        assert [s.gates for s in fast] == [s.gates for s in reference]
        assert [s.base_duration_ns for s in fast] == [
            s.base_duration_ns for s in reference
        ]
