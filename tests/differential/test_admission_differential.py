"""Differential: admission policies vs the structural loops and across planes.

Three contracts:

* ``admission="structural"`` (the default) is **bit-identical** to a
  compiler constructed without the knob, for every strategy, through the
  versioned codec — the success-aware machinery must not perturb the
  default path at all.
* ``admission="success"`` emits bit-identical programs through the indexed
  and the reference data planes: the policy loop evaluates structural
  admissibility through whichever plane's kernels, and those are
  decision-identical (PR 3), so the estimator-guided choice must be too.
* The policy-driven scheduler loop under :class:`StructuralAdmission` makes
  exactly the structural loops' decisions (covered at the scheduler level
  in ``tests/core/test_admission.py``; here end-to-end through a compile).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import STRATEGIES
from repro.service import make_compiler
from repro.service.compile_service import build_device_for
from repro.workloads import benchmark_circuit

from diffgen import random_circuit, random_device  # noqa: E402 (sys.path via pytest)


def _canonical(result):
    payload = result.to_dict()
    payload.pop("compile_time_s")
    payload["program"]["metadata"].pop("compile_time_s", None)
    return json.dumps(payload, sort_keys=True)


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(4))
def test_structural_knob_is_bit_identical_to_default(strategy, seed):
    device = random_device(seed)
    circuit = random_circuit(device.num_qubits, seed)
    default = make_compiler(strategy, device).compile(circuit)
    explicit = make_compiler(strategy, device, admission="structural").compile(circuit)
    assert _canonical(default) == _canonical(explicit), (
        f"{strategy} default diverged from admission='structural' on seed {seed}"
    )


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("bench", ["xeb(16,5)", "qaoa(16)"])
def test_structural_knob_is_bit_identical_on_benchmarks(strategy, bench):
    device = build_device_for(bench)
    circuit = benchmark_circuit(bench, seed=2020)
    default = make_compiler(strategy, device).compile(circuit)
    explicit = make_compiler(strategy, device, admission="structural").compile(circuit)
    assert _canonical(default) == _canonical(explicit)


@pytest.mark.differential
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", range(4))
def test_success_admission_identical_across_planes(strategy, seed):
    device = random_device(seed)
    circuit = random_circuit(device.num_qubits, seed)
    fast = make_compiler(
        strategy, device, indexed_kernels=True, admission="success"
    ).compile(circuit)
    reference = make_compiler(
        strategy, device, indexed_kernels=False, admission="success"
    ).compile(circuit)
    assert _canonical(fast) == _canonical(reference), (
        f"{strategy} success admission diverged across planes on seed {seed}"
    )


@pytest.mark.differential
@pytest.mark.parametrize("strategy", ["ColorDynamic", "Baseline U"])
@pytest.mark.parametrize("bench", ["xeb(16,5)", "qaoa(16)"])
def test_success_admission_identical_across_planes_benchmarks(strategy, bench):
    device = build_device_for(bench)
    circuit = benchmark_circuit(bench, seed=2020)
    fast = make_compiler(
        strategy, device, indexed_kernels=True, admission="success"
    ).compile(circuit)
    reference = make_compiler(
        strategy, device, indexed_kernels=False, admission="success"
    ).compile(circuit)
    assert _canonical(fast) == _canonical(reference)


@pytest.mark.differential
@pytest.mark.parametrize("max_colors", [1, 2, 3])
def test_success_admission_respects_color_budgets(max_colors):
    """Binding budgets are where admission order matters most; the emitted
    program must still stay within the budget and match across planes."""
    device = build_device_for("xeb(16,5)")
    circuit = benchmark_circuit("xeb(16,5)", seed=2020)
    fast = make_compiler(
        "ColorDynamic", device, max_colors, indexed_kernels=True, admission="success"
    ).compile(circuit)
    reference = make_compiler(
        "ColorDynamic", device, max_colors, indexed_kernels=False, admission="success"
    ).compile(circuit)
    assert fast.max_colors_used <= max_colors
    assert _canonical(fast) == _canonical(reference)
