"""Differential: vectorized max-separation solver vs the scalar reference.

Placements must be bit-identical (tuple equality of raw floats), not merely
close: the solver's output feeds directly into compiled-program frequencies,
and the program store asserts bit-exact round trips.
"""

from __future__ import annotations

import random

import pytest

from repro.core.solver import (
    _greedy_place,
    _greedy_place_vec,
    assign_color_frequencies,
    solve_max_separation,
    solve_max_separation_cached,
)

SEEDS = range(120)


def _random_instance(seed: int):
    rng = random.Random(seed)
    count = rng.randint(1, 10)
    low = rng.uniform(3.5, 6.5)
    high = low + rng.uniform(0.005, 2.5)
    alpha = -rng.uniform(0.02, 0.45)
    return rng, count, low, high, alpha


@pytest.mark.differential
@pytest.mark.parametrize("seed", SEEDS)
def test_greedy_place_vectorized_is_bit_identical(seed):
    rng, count, low, high, alpha = _random_instance(seed)
    for _ in range(5):
        delta = rng.uniform(1e-6, (high - low) * 0.8)
        reference = _greedy_place(count, low, high, delta, alpha)
        fast = _greedy_place_vec(count, low, high, delta, alpha)
        if reference is None:
            assert fast is None
        else:
            assert fast == reference  # exact float equality, placement by placement


@pytest.mark.differential
@pytest.mark.parametrize("seed", SEEDS)
def test_solve_max_separation_engines_agree(seed):
    _, count, low, high, alpha = _random_instance(seed)
    reference = solve_max_separation(count, low, high, alpha, vectorized=False)
    fast = solve_max_separation(count, low, high, alpha, vectorized=True)
    assert fast == reference  # frozen dataclass: frequencies, separation, feasible
    cached = solve_max_separation_cached(count, low, high, alpha)
    assert cached == reference


@pytest.mark.differential
@pytest.mark.parametrize("seed", range(30))
def test_assign_color_frequencies_engines_agree(seed):
    rng = random.Random(seed)
    coloring = {
        (i, i + 1): rng.randrange(rng.randint(1, 5))
        for i in range(rng.randint(1, 12))
    }
    low, high = 6.6, 6.8
    fast_map, fast_solution = assign_color_frequencies(
        coloring, low, high, anharmonicity=-0.2, vectorized=True
    )
    ref_map, ref_solution = assign_color_frequencies(
        coloring, low, high, anharmonicity=-0.2, vectorized=False
    )
    assert fast_map == ref_map
    assert fast_solution == ref_solution


@pytest.mark.differential
def test_infeasible_instances_agree():
    # Band far too small for the requested count: both engines must flag
    # infeasibility and fall back to the same uniform spread.
    reference = solve_max_separation(8, 5.0, 5.0005, -0.2, vectorized=False)
    fast = solve_max_separation(8, 5.0, 5.0005, -0.2, vectorized=True)
    assert not reference.feasible
    assert fast == reference
